//! **Experiment F3 — the reference rounder's anatomy**.
//!
//! Paper Figure 3: the rounder counts leading zeros of the intermediate
//! result, shifts left by `nlz` bounded so the exponent cannot drop below
//! emin (producing denormal results by partial normalization), then rounds.
//!
//! We dissect the reference FPU's rounder: cone sizes of the LZC, the
//! normalization shifter, and the rounding stage; and we demonstrate the
//! bounded-normalization behaviour (denormal results) concretely on both
//! FPUs against the softfloat oracle.

use fmaverify_bench::{banner, bench_config, compare};
use fmaverify_fpu::{build_ref_fpu, FpuInputs, FpuOp, ProductSource};
use fmaverify_netlist::{BitSim, Netlist, Signal, Word};
use fmaverify_softfloat::{mul_with, FpClass, RoundingMode};

fn main() {
    banner(
        "rounder_anatomy",
        "Figure 3: LZC -> bounded normalization -> round (denormal results)",
    );
    let cfg = bench_config();
    let mut n = Netlist::new();
    let inputs = FpuInputs::new(&mut n, cfg.format);
    let fpu = build_ref_fpu(&mut n, &cfg, &inputs, ProductSource::Exact);

    // Cone sizes: the sha signal (the LZC + bound logic of Figure 3), and
    // the full result (plus shifter and rounder).
    let sha_cone = n.cone_size(fpu.sha.bits());
    let result_cone = n.cone_size(fpu.outputs.result.bits());
    let delta_cone = n.cone_size(fpu.delta.bits());
    println!("cone sizes (AND gates):");
    println!("  δ computation (exponent logic):     {delta_cone}");
    println!("  sha (161-bit add + LZC + bound):     {sha_cone}");
    println!("  full result (+ normalize + round):   {result_cone}\n");
    compare(
        "sha depends on the full-width addition",
        "logic driving sha has considerable complexity",
        &format!("{sha_cone} gates vs {delta_cone} for δ alone"),
        sha_cone > 4 * delta_cone,
    );

    // Partial normalization: products of small normals denormalize instead
    // of normalizing fully — the shift is bounded by the exponent.
    let mut sim = BitSim::new(&n);
    let fmt = cfg.format;
    let mut denormal_results = 0;
    let mut checked = 0;
    let e_lo = 1u32;
    for ea in e_lo..=(fmt.bias() as u32) {
        for frac in [0u128, 1, fmt.frac_mask()] {
            let a = fmt.pack(false, ea, frac);
            let b = fmt.pack(false, e_lo, fmt.frac_mask());
            sim.set_word(&inputs.a, a);
            sim.set_word(&inputs.b, b);
            sim.set_word(&inputs.c, 0);
            sim.set_word(&inputs.op, FpuOp::Mul.encode() as u128);
            sim.set_word(&inputs.rm, RoundingMode::NearestEven.encode() as u128);
            sim.eval();
            let got = sim.get_word(&fpu.outputs.result);
            let want = mul_with(fmt, a, b, RoundingMode::NearestEven, true);
            assert_eq!(got, want.bits, "a={a:#x} b={b:#x}");
            if fmt.classify(got) == FpClass::Denormal {
                denormal_results += 1;
                // The normalization was bounded: sha < nlz would have been
                // possible, but the exponent floor stopped it.
                let sha = sim.get_word(&fpu.sha);
                let limit = fmt.bias() as u128; // loose upper bound
                assert!(sha <= limit + fmt.frac_bits() as u128 + 5);
            }
            checked += 1;
        }
    }
    println!(
        "bounded-normalization sweep: {checked} small-normal products checked, \
         {denormal_results} denormal results produced correctly"
    );
    compare(
        "partial normalization produces denormal results",
        "denormal result may be generated here",
        &format!("{denormal_results} of {checked}"),
        denormal_results > 0,
    );

    // Structural contrast with the implementation (LZC chain vs anticipation
    // + correction): count how often the impl's correction fires.
    let mut n2 = Netlist::new();
    let inputs2 = FpuInputs::new(&mut n2, cfg.format);
    let fpu2 = fmaverify_fpu::build_impl_fpu(
        &mut n2,
        &cfg,
        &inputs2,
        fmaverify_fpu::MultiplierMode::Real,
        fmaverify_fpu::PipelineMode::Combinational,
    );
    let mut sim2 = BitSim::new(&n2);
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut corrections = 0;
    let trials = 4000;
    for _ in 0..trials {
        // Cancellation-heavy stimulus.
        let emax = (1u32 << fmt.exp_bits()) - 2;
        let ea = rng.gen_range(1..=emax);
        let eb = rng.gen_range(1..=emax);
        let ec = ((ea + eb) as i64 - fmt.bias() as i64).clamp(1, emax as i64) as u32;
        let a = fmt.pack(rng.gen(), ea, rng.gen::<u128>() & fmt.frac_mask());
        let b = fmt.pack(rng.gen(), eb, rng.gen::<u128>() & fmt.frac_mask());
        let c = fmt.pack(
            !fmt.sign_of(a) ^ fmt.sign_of(b),
            ec,
            rng.gen::<u128>() & fmt.frac_mask(),
        );
        sim2.set_word(&inputs2.a, a);
        sim2.set_word(&inputs2.b, b);
        sim2.set_word(&inputs2.c, c);
        sim2.set_word(&inputs2.op, 0);
        sim2.set_word(&inputs2.rm, 0);
        sim2.eval();
        if sim2.get(fpu2.correction) {
            corrections += 1;
        }
    }
    println!(
        "\nimplementation mis-anticipation correction fired on {corrections}/{trials} \
         cancellation-heavy vectors"
    );
    compare(
        "the implementation's shift amount can differ from ref's sha",
        "offset by one due to the anticipation error",
        &format!("{corrections} corrections observed"),
        corrections > 0,
    );
    let _ = Signal::TRUE;
    let _: Option<Word> = None;
}
