//! Shared support for the experiment-regeneration binaries.
//!
//! Every binary in this crate regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index). The floating-point format is scaled
//! down by default so a full sweep runs on one machine; set
//! `FMAVERIFY_EXP`/`FMAVERIFY_FRAC` to change it, or `FMAVERIFY_FULL_DP=1`
//! to run the selected experiment at IEEE double precision (slow).

#![warn(missing_docs)]

use fmaverify_fpu::{DenormalMode, FpuConfig};
use fmaverify_softfloat::FpFormat;

/// The benchmark format, from the environment (default 4-bit exponent,
/// 4-bit fraction; `FMAVERIFY_FULL_DP=1` selects binary64).
pub fn bench_format() -> FpFormat {
    if std::env::var_os("FMAVERIFY_FULL_DP").is_some() {
        return FpFormat::DOUBLE;
    }
    let exp = env_u32("FMAVERIFY_EXP", 4);
    let frac = env_u32("FMAVERIFY_FRAC", 4);
    FpFormat::new(exp, frac)
}

/// The benchmark configuration (flush-to-zero unless `FMAVERIFY_FULL_IEEE`
/// is set).
pub fn bench_config() -> FpuConfig {
    FpuConfig {
        format: bench_format(),
        denormals: if std::env::var_os("FMAVERIFY_FULL_IEEE").is_some() {
            DenormalMode::FullIeee
        } else {
            DenormalMode::FlushToZero
        },
    }
}

/// Reads a `u32` from the environment with a default.
pub fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Prints a standard experiment header.
pub fn banner(experiment: &str, paper_ref: &str) {
    let cfg = bench_config();
    println!("================================================================");
    println!("experiment: {experiment}");
    println!("paper:      {paper_ref}");
    println!(
        "format:     ({}, {}) {:?}",
        cfg.format.exp_bits(),
        cfg.format.frac_bits(),
        cfg.denormals
    );
    println!("================================================================\n");
}

/// Formats a duration compactly.
pub fn dur(d: std::time::Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2}s", d.as_secs_f64())
    } else {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    }
}

/// True when the binary was asked for machine-readable output, via the
/// `--json` flag or `FMAVERIFY_JSON=1`.
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json") || std::env::var_os("FMAVERIFY_JSON").is_some()
}

/// Writes per-case results under `results/<experiment>.json` when
/// [`json_requested`] — the value is only rendered if the flag is set.
/// Returns the path written.
///
/// The payload is wrapped in a schema-versioned envelope (see DESIGN.md):
///
/// ```json
/// { "schema_version": 2, "experiment": "...", "format": {...}, "data": ... }
/// ```
pub fn maybe_write_json(
    experiment: &str,
    value: impl FnOnce() -> fmaverify::JsonValue,
) -> Option<std::path::PathBuf> {
    if !json_requested() {
        return None;
    }
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results/ directory");
    let path = dir.join(format!("{experiment}.json"));
    let cfg = bench_config();
    let envelope = fmaverify::JsonValue::object(vec![
        (
            "schema_version",
            fmaverify::JsonValue::int(u64::from(fmaverify::SCHEMA_VERSION)),
        ),
        ("experiment", fmaverify::JsonValue::string(experiment)),
        (
            "format",
            fmaverify::JsonValue::object(vec![
                (
                    "exp_bits",
                    fmaverify::JsonValue::int(u64::from(cfg.format.exp_bits())),
                ),
                (
                    "frac_bits",
                    fmaverify::JsonValue::int(u64::from(cfg.format.frac_bits())),
                ),
                (
                    "denormals",
                    fmaverify::JsonValue::string(format!("{:?}", cfg.denormals)),
                ),
            ]),
        ),
        ("data", value()),
    ]);
    std::fs::write(&path, envelope.render_pretty()).expect("write JSON results");
    println!("json:       wrote {}", path.display());
    Some(path)
}

/// Builds the tracer the environment asks for: `FMAVERIFY_TRACE=1` streams
/// JSONL telemetry to `results/<experiment>.trace.jsonl`,
/// `FMAVERIFY_TRACE=<path>` streams to that path, unset returns the
/// near-zero-cost disabled tracer.
pub fn tracer_from_env(experiment: &str) -> fmaverify::Tracer {
    let Some(value) = std::env::var_os("FMAVERIFY_TRACE") else {
        return fmaverify::Tracer::disabled();
    };
    let path = match value.to_str() {
        Some("") | Some("0") | None => return fmaverify::Tracer::disabled(),
        Some("1") => {
            std::fs::create_dir_all("results").expect("create results/ directory");
            std::path::PathBuf::from(format!("results/{experiment}.trace.jsonl"))
        }
        Some(p) => std::path::PathBuf::from(p),
    };
    let tracer = fmaverify::Tracer::to_jsonl_file(&path).expect("open trace file");
    println!("trace:      streaming to {}", path.display());
    tracer
}

/// The typed run configuration for one experiment: [`RunConfig::from_env`]
/// (budgets, threads, escalation, proof-cache mode via `FMAVERIFY_CACHE`)
/// with the experiment's tracer ([`tracer_from_env`]) attached — the one
/// env/arg parser shared by every binary in this crate.
///
/// [`RunConfig::from_env`]: fmaverify::RunConfig::from_env
pub fn run_config_from_env(experiment: &str) -> fmaverify::RunConfig {
    let config = fmaverify::RunConfig::from_env().tracer(tracer_from_env(experiment));
    if config.cache_mode.is_enabled() {
        println!(
            "cache:      {:?} at {}",
            config.cache_mode,
            config.cache_dir.display()
        );
    }
    config
}

/// A paper-vs-measured comparison line for EXPERIMENTS.md.
pub fn compare(label: &str, paper: &str, measured: &str, shape_holds: bool) {
    println!(
        "  {:<44} paper: {:<22} measured: {:<22} [{}]",
        label,
        paper,
        measured,
        if shape_holds { "shape OK" } else { "MISMATCH" }
    );
}
