//! A std-only, dependency-free drop-in for the subset of the `rand` crate
//! API used by this workspace: `StdRng::seed_from_u64`, `Rng::gen`, and
//! `Rng::gen_range` over integer ranges.
//!
//! The workspace builds in offline environments where crates.io is not
//! reachable, so the real `rand` cannot be fetched; this shim keeps every
//! call site source-compatible. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic for a given seed, which is all the tests and
//! test-case generators here rely on.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`] (the role of
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from uniformly (the role of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Integer types [`Rng::gen_range`] can produce (the role of
/// `rand::distributions::uniform::SampleUniform`).
///
/// Implemented via offsets in `u128` space so the same code path serves
/// every width, signed or unsigned.
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps the value into `u128` offset space (order-preserving).
    fn to_offset_space(self) -> u128;
    /// Maps back from `u128` offset space.
    fn from_offset_space(v: u128) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods (shim of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a uniform value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Generator namespace (shim of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded through
    /// SplitMix64 (the real `StdRng` is also a fixed, seedable algorithm).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias for environments that asked for the small generator.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_lossless)]
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                if std::mem::size_of::<$t>() > 8 {
                    (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as $t
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Uniform sampling of `x` in `[0, bound)` without modulo bias
/// (Lemire-style rejection on 128-bit space to cover u128 bounds).
fn uniform_below<R: RngCore>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    // Rejection sampling on the top bits: mask to the next power of two.
    let mask = u128::MAX >> bound.leading_zeros().min(127);
    loop {
        let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        let candidate = raw & mask;
        if candidate < bound {
            return candidate;
        }
    }
}

// The sign-flip constant maps signed integers into unsigned offset space
// order-preservingly (i128::MIN -> 0), so one u128 code path serves every
// integer width.
macro_rules! impl_sample_uniform {
    (unsigned: $($u:ty),*; signed: $($i:ty),*) => {
        $(impl SampleUniform for $u {
            fn to_offset_space(self) -> u128 { self as u128 }
            fn from_offset_space(v: u128) -> Self { v as $u }
        })*
        $(impl SampleUniform for $i {
            fn to_offset_space(self) -> u128 {
                (self as i128 as u128) ^ (1u128 << 127)
            }
            fn from_offset_space(v: u128) -> Self {
                (v ^ (1u128 << 127)) as i128 as $i
            }
        })*
    };
}
impl_sample_uniform!(unsigned: u8, u16, u32, u64, u128, usize;
                     signed: i8, i16, i32, i64, i128, isize);

// Blanket impls over the range's own parameter: this is what lets
// `rng.gen_range(0..4)` infer its type from the call context (e.g. `usize`
// when used as a slice index), exactly as with the real `rand` crate.
impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let lo = self.start.to_offset_space();
        let span = self.end.to_offset_space() - lo;
        T::from_offset_space(lo + uniform_below(rng, span))
    }
}
impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        let lo = start.to_offset_space();
        let span = end.to_offset_space() - lo;
        if span == u128::MAX {
            let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            return T::from_offset_space(raw);
        }
        T::from_offset_space(lo + uniform_below(rng, span + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-4..4);
            assert!((-4..4).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let w: u128 = rng.gen_range(0..=u128::from(u64::MAX));
            assert!(w <= u128::from(u64::MAX));
            let x: u32 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&x));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..4 should occur");
    }

    #[test]
    fn bool_is_balanced() {
        let mut rng = StdRng::seed_from_u64(9);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "trues = {trues}");
    }
}
