//! Exhaustive validation of the softfloat FMA against an independent naive
//! oracle on a tiny format, plus property tests against the host FPU at
//! double precision.
//!
//! The naive oracle computes the exact value of `a*b + c` as an integer
//! scaled by a common power of two (possible because the tiny format's
//! exponent range is small), then rounds by *searching* the sorted list of
//! representable values — a completely different algorithm from the
//! implementation's guard/sticky rounding.

use fmaverify_softfloat::{add_with, fma, fma_with, mul_with, FpClass, FpFormat, RoundingMode};
use proptest::prelude::*;

/// Exact finite value as `mag * 2^E0` for a fixed common exponent `E0`.
fn exact_scaled(fmt: FpFormat, bits: u128, e0: i32) -> i128 {
    match fmt.classify(bits) {
        FpClass::Zero => 0,
        FpClass::Normal | FpClass::Denormal => {
            let (s, m, e) = fmt.unpack_finite(bits);
            let v = (m as i128) << (e - e0) as u32;
            if s {
                -v
            } else {
                v
            }
        }
        _ => panic!("not finite"),
    }
}

/// All non-negative finite magnitudes of the format (scaled by 2^-e0),
/// sorted ascending, plus one extra entry for the overflow threshold
/// 2^(emax+1).
fn candidate_magnitudes(fmt: FpFormat, e0: i32) -> Vec<(i128, u128)> {
    let mut out = Vec::new();
    for bits in 0..1u128 << (fmt.width() - 1) {
        match fmt.classify(bits) {
            FpClass::Zero | FpClass::Normal | FpClass::Denormal => {
                out.push((exact_scaled(fmt, bits, e0), bits));
            }
            _ => {}
        }
    }
    out.sort();
    // Overflow sentinel: 2^(emax+1) with the encoding of infinity.
    let sentinel = 1i128 << (fmt.emax() + 1 - e0) as u32;
    out.push((sentinel, fmt.inf(false)));
    out
}

/// Result bits when an operation overflows, per rounding mode.
fn overflow_bits(fmt: FpFormat, sign: bool, rm: RoundingMode) -> u128 {
    match rm {
        RoundingMode::NearestEven => fmt.inf(sign),
        RoundingMode::TowardZero => fmt.max_finite(sign),
        RoundingMode::TowardPositive => {
            if sign {
                fmt.max_finite(true)
            } else {
                fmt.inf(false)
            }
        }
        RoundingMode::TowardNegative => {
            if sign {
                fmt.inf(true)
            } else {
                fmt.max_finite(false)
            }
        }
    }
}

/// Independent rounding: pick the representable value for the exact result
/// `mag * 2^e0` by candidate search. Returns `(bits, overflow, inexact)`.
fn naive_round(
    fmt: FpFormat,
    candidates: &[(i128, u128)],
    exact: i128,
    rm: RoundingMode,
    zero_sign_neg: bool,
) -> (u128, bool, bool) {
    let sign = exact < 0;
    let mag = exact.unsigned_abs() as i128;
    if mag == 0 {
        return (fmt.zero(zero_sign_neg), false, false);
    }
    let (sentinel, _) = *candidates.last().expect("sentinel present");
    if mag >= sentinel {
        // At or beyond 2^(emax+1): overflow in every mode.
        return (overflow_bits(fmt, sign, rm), true, true);
    }
    // Find neighbors lo <= mag <= hi among candidate magnitudes.
    let idx = candidates.partition_point(|&(v, _)| v <= mag);
    let (lo_v, lo_bits) = candidates[idx - 1];
    let exact_hit = lo_v == mag;
    if exact_hit {
        return (apply_sign(fmt, lo_bits, sign), false, false);
    }
    let (hi_v, hi_bits) = candidates[idx];
    let pick_hi = match rm {
        RoundingMode::TowardZero => false,
        RoundingMode::TowardPositive => !sign,
        RoundingMode::TowardNegative => sign,
        RoundingMode::NearestEven => {
            let d_lo = mag - lo_v;
            let d_hi = hi_v - mag;
            if d_lo != d_hi {
                d_hi < d_lo
            } else {
                // Tie: pick the candidate with even significand encoding.
                hi_bits & 1 == 0
            }
        }
    };
    if pick_hi && hi_bits == fmt.inf(false) {
        // Rounded up past the largest finite value.
        return (fmt.inf(sign), true, true);
    }
    let chosen = if pick_hi { hi_bits } else { lo_bits };
    (apply_sign(fmt, chosen, sign), false, true)
}

fn apply_sign(fmt: FpFormat, bits: u128, sign: bool) -> u128 {
    if sign {
        bits | 1u128 << (fmt.width() - 1)
    } else {
        bits
    }
}

/// The naive FMA oracle for finite operands.
fn naive_fma(
    fmt: FpFormat,
    candidates: &[(i128, u128)],
    e0: i32,
    a: u128,
    b: u128,
    c: u128,
    rm: RoundingMode,
) -> (u128, bool, bool, bool) {
    // Product: exact in scaled space with base 2*e0 for the operand parts.
    let (pa, pb, pc) = (
        exact_scaled(fmt, a, e0),
        exact_scaled(fmt, b, e0),
        exact_scaled(fmt, c, e0),
    );
    // a*b has scale 2^(2*e0); bring c to the same scale.
    let exact = pa * pb + pc * (1i128 << (-e0) as u32);
    // Round in the 2^(2*e0) scale: rebuild candidates scaled accordingly.
    let scaled: Vec<(i128, u128)> = candidates
        .iter()
        .map(|&(v, bits)| (v * (1i128 << (-e0) as u32), bits))
        .collect();
    let zero_sign_neg = if exact == 0 {
        let sp = fmt.sign_of(a) ^ fmt.sign_of(b);
        let prod_zero = fmt.classify(a) == FpClass::Zero || fmt.classify(b) == FpClass::Zero;
        let sc = fmt.sign_of(c);
        if prod_zero && fmt.classify(c) == FpClass::Zero {
            if sp == sc {
                sp
            } else {
                rm == RoundingMode::TowardNegative
            }
        } else if prod_zero {
            sc // exact c (c must be zero for exact==0 here — handled above)
        } else {
            // True cancellation.
            rm == RoundingMode::TowardNegative
        }
    } else {
        false
    };
    let (bits, overflow, inexact) = naive_round(fmt, &scaled, exact, rm, zero_sign_neg);
    // Underflow: tiny before rounding and inexact.
    let tiny =
        exact != 0 && (exact.unsigned_abs() as i128) < (1i128 << (fmt.emin() - 2 * e0) as u32);
    (bits, inexact || overflow, overflow, tiny && inexact)
}

#[test]
fn exhaustive_tiny_format_all_modes() {
    // 6-bit format: 3 exponent bits, 2 fraction bits.
    let fmt = FpFormat::new(3, 2);
    let e0 = fmt.emin() - fmt.frac_bits() as i32; // minimal LSB exponent
    let candidates = candidate_magnitudes(fmt, e0);
    let all: Vec<u128> = (0..1u128 << fmt.width()).collect();
    let finite = |x: u128| {
        matches!(
            fmt.classify(x),
            FpClass::Zero | FpClass::Normal | FpClass::Denormal
        )
    };
    let mut checked = 0u64;
    for &a in &all {
        for &b in &all {
            for &c in &all {
                if !(finite(a) && finite(b) && finite(c)) {
                    continue;
                }
                for rm in RoundingMode::ALL {
                    let got = fma(fmt, a, b, c, rm);
                    let (bits, inexact, overflow, underflow) =
                        naive_fma(fmt, &candidates, e0, a, b, c, rm);
                    assert_eq!(
                        got.bits,
                        bits,
                        "fma({a:#x},{b:#x},{c:#x}) rm={rm:?}: got {:#x} want {bits:#x} \
                         ({} * {} + {})",
                        got.bits,
                        fmt.to_f64(a),
                        fmt.to_f64(b),
                        fmt.to_f64(c)
                    );
                    assert_eq!(
                        got.flags.inexact, inexact,
                        "inexact for {a:#x},{b:#x},{c:#x} {rm:?}"
                    );
                    assert_eq!(
                        got.flags.overflow, overflow,
                        "overflow for {a:#x},{b:#x},{c:#x} {rm:?}"
                    );
                    assert_eq!(
                        got.flags.underflow,
                        underflow,
                        "underflow for {a:#x},{b:#x},{c:#x} {rm:?} (exact result {})",
                        fmt.to_f64(got.bits)
                    );
                    checked += 1;
                }
            }
        }
    }
    // 56 finite patterns ^ 3 operands * 4 rounding modes.
    assert_eq!(checked, 56 * 56 * 56 * 4, "unexpected combination count");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn double_fma_matches_host(a: u64, b: u64, c: u64) {
        let fmt = FpFormat::DOUBLE;
        let r = fma(fmt, a as u128, b as u128, c as u128, RoundingMode::NearestEven);
        let host = f64::from_bits(a).mul_add(f64::from_bits(b), f64::from_bits(c));
        if host.is_nan() {
            prop_assert!(fmt.is_nan(r.bits));
        } else {
            prop_assert_eq!(r.bits as u64, host.to_bits(),
                "fma({}, {}, {})", f64::from_bits(a), f64::from_bits(b), f64::from_bits(c));
        }
    }

    #[test]
    fn double_add_mul_match_host(a: u64, b: u64) {
        let fmt = FpFormat::DOUBLE;
        let fa = f64::from_bits(a);
        let fb = f64::from_bits(b);
        let add = add_with(fmt, a as u128, b as u128, RoundingMode::NearestEven, false);
        if (fa + fb).is_nan() {
            prop_assert!(fmt.is_nan(add.bits));
        } else {
            prop_assert_eq!(add.bits as u64, (fa + fb).to_bits(), "{} + {}", fa, fb);
        }
        let mul = mul_with(fmt, a as u128, b as u128, RoundingMode::NearestEven, false);
        if (fa * fb).is_nan() {
            prop_assert!(fmt.is_nan(mul.bits));
        } else {
            prop_assert_eq!(mul.bits as u64, (fa * fb).to_bits(), "{} * {}", fa, fb);
        }
    }

    #[test]
    fn double_fma_denormal_heavy(af in 0u64..(1 << 53), cf in 0u64..(1 << 53), sa: bool, sc: bool) {
        // Operands biased toward the denormal range where most FPU bugs live.
        let fmt = FpFormat::DOUBLE;
        let a = (af | (u64::from(sa) << 63)) as u128;
        let c = (cf | (u64::from(sc) << 63)) as u128;
        let b = (1.5f64).to_bits() as u128;
        let r = fma(fmt, a, b, c, RoundingMode::NearestEven);
        let host = f64::from_bits(a as u64).mul_add(1.5, f64::from_bits(c as u64));
        prop_assert_eq!(r.bits as u64, host.to_bits());
    }

    #[test]
    fn daz_consistency(a: u64, b: u64, c: u64) {
        // DAZ result equals full-IEEE result on manually-flushed operands.
        let fmt = FpFormat::DOUBLE;
        let flush = |x: u128| {
            if fmt.classify(x) == FpClass::Denormal { fmt.zero(fmt.sign_of(x)) } else { x }
        };
        for rm in RoundingMode::ALL {
            let daz = fma_with(fmt, a as u128, b as u128, c as u128, rm, true);
            let manual = fma_with(fmt, flush(a as u128), flush(b as u128), flush(c as u128), rm, false);
            prop_assert_eq!(daz, manual);
        }
    }
}
