//! Algebraic property tests of the softfloat oracle at double precision:
//! identities and ordering facts that IEEE-754 arithmetic must satisfy in
//! every rounding mode. These complement the exhaustive tiny-format check
//! with properties that hold at full width.

use fmaverify_softfloat::{
    add_with, fma, fma_with, mul_with, negate, sub_with, FpClass, FpFormat, RoundingMode,
};
use proptest::prelude::*;

const D: FpFormat = FpFormat::DOUBLE;

fn finite(x: u64) -> bool {
    matches!(
        D.classify(x as u128),
        FpClass::Zero | FpClass::Normal | FpClass::Denormal
    )
}

fn opposite(rm: RoundingMode) -> RoundingMode {
    match rm {
        RoundingMode::TowardPositive => RoundingMode::TowardNegative,
        RoundingMode::TowardNegative => RoundingMode::TowardPositive,
        other => other,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn product_commutes(a: u64, b: u64, c: u64) {
        for rm in RoundingMode::ALL {
            prop_assert_eq!(
                fma(D, a as u128, b as u128, c as u128, rm),
                fma(D, b as u128, a as u128, c as u128, rm)
            );
        }
    }

    #[test]
    fn addition_commutes(a: u64, b: u64) {
        for rm in RoundingMode::ALL {
            let x = add_with(D, a as u128, b as u128, rm, false);
            let y = add_with(D, b as u128, a as u128, rm, false);
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn negation_symmetry(a: u64, b: u64, c: u64) {
        // -(a*b + c) computed directly vs via negated operands:
        // fma(-a, b, -c) == -(fma(a, b, c)) with the rounding direction
        // mirrored.
        let (a, b, c) = (a as u128, b as u128, c as u128);
        for rm in RoundingMode::ALL {
            let lhs = fma(D, negate(D, a), b, negate(D, c), rm);
            let rhs = fma(D, a, b, c, opposite(rm));
            if D.is_nan(lhs.bits) {
                prop_assert!(D.is_nan(rhs.bits));
            } else {
                prop_assert_eq!(lhs.bits, negate(D, rhs.bits));
                prop_assert_eq!(lhs.flags, rhs.flags);
            }
        }
    }

    #[test]
    fn multiplication_by_one_is_identity(a: u64) {
        prop_assume!(finite(a));
        for rm in RoundingMode::ALL {
            let r = mul_with(D, a as u128, D.one(false), rm, false);
            prop_assert_eq!(r.bits, a as u128);
            prop_assert_eq!(r.flags.encode(), 0);
        }
    }

    #[test]
    fn addition_of_zero_is_identity(a: u64) {
        prop_assume!(finite(a));
        prop_assume!(D.classify(a as u128) != FpClass::Zero);
        for rm in RoundingMode::ALL {
            let r = add_with(D, a as u128, D.zero(false), rm, false);
            prop_assert_eq!(r.bits, a as u128);
            prop_assert_eq!(r.flags.encode(), 0);
        }
    }

    #[test]
    fn subtraction_of_self_is_zero(a: u64) {
        prop_assume!(finite(a));
        for rm in RoundingMode::ALL {
            let r = sub_with(D, a as u128, a as u128, rm, false);
            prop_assert_eq!(D.classify(r.bits), FpClass::Zero);
            let expect_neg = rm == RoundingMode::TowardNegative
                && D.classify(a as u128) != FpClass::Zero;
            // For a == ±0, 0-0 keeps IEEE's sum-of-zeros rule instead.
            if D.classify(a as u128) != FpClass::Zero {
                prop_assert_eq!(D.sign_of(r.bits), expect_neg);
            }
        }
    }

    #[test]
    fn directed_modes_bracket_nearest(a: u64, b: u64, c: u64) {
        // value(RTN) <= value(RNE) <= value(RTP) whenever all are finite.
        let (a, b, c) = (a as u128, b as u128, c as u128);
        let dn = fma(D, a, b, c, RoundingMode::TowardNegative);
        let ne = fma(D, a, b, c, RoundingMode::NearestEven);
        let up = fma(D, a, b, c, RoundingMode::TowardPositive);
        prop_assume!(!D.is_nan(ne.bits));
        let v = |r: u128| D.to_f64(r);
        prop_assert!(v(dn.bits) <= v(ne.bits), "{} <= {}", v(dn.bits), v(ne.bits));
        prop_assert!(v(ne.bits) <= v(up.bits), "{} <= {}", v(ne.bits), v(up.bits));
    }

    #[test]
    fn toward_zero_never_grows_magnitude(a: u64, b: u64, c: u64) {
        let (a, b, c) = (a as u128, b as u128, c as u128);
        let tz = fma(D, a, b, c, RoundingMode::TowardZero);
        let ne = fma(D, a, b, c, RoundingMode::NearestEven);
        prop_assume!(!D.is_nan(ne.bits));
        prop_assert!(
            D.to_f64(tz.bits).abs() <= D.to_f64(ne.bits).abs(),
            "tz {} vs ne {}",
            D.to_f64(tz.bits),
            D.to_f64(ne.bits)
        );
    }

    #[test]
    fn exact_results_raise_no_flags(af in 0u64..(1 << 26), bf in 0u64..(1 << 26)) {
        // Products of 26-bit integers are exact in binary64.
        let a = (af as f64).to_bits() as u128;
        let b = (bf as f64).to_bits() as u128;
        for rm in RoundingMode::ALL {
            let r = mul_with(D, a, b, rm, false);
            prop_assert!(!r.flags.inexact && !r.flags.overflow && !r.flags.underflow);
            prop_assert_eq!(D.to_f64(r.bits), af as f64 * bf as f64);
        }
    }

    #[test]
    fn daz_equals_manual_flush(a: u64, b: u64, c: u64) {
        let flush = |x: u128| {
            if D.classify(x) == FpClass::Denormal {
                D.zero(D.sign_of(x))
            } else {
                x
            }
        };
        for rm in RoundingMode::ALL {
            let daz = fma_with(D, a as u128, b as u128, c as u128, rm, true);
            let man = fma_with(
                D,
                flush(a as u128),
                flush(b as u128),
                flush(c as u128),
                rm,
                false,
            );
            prop_assert_eq!(daz, man);
        }
    }
}
