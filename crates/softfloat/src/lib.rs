//! A bit-accurate, parametric IEEE-754 fused-multiply-add oracle.
//!
//! This crate plays the role of the processor's *architectural specification*
//! in the verification flow: the reference FPU netlist and the implementation
//! FPU netlist are both validated against it in simulation, and the formal
//! methodology proves the two netlists equivalent to each other.
//!
//! Supported: any binary format up to slightly beyond double precision
//! ([`FpFormat`]), all four IEEE rounding modes ([`RoundingMode`]), denormal
//! operands and results, NaN/infinity special cases, the IEEE exception
//! flags ([`Flags`]), and the denormal-operands-as-zero mode of the paper's
//! primary FPU (`*_with(..., daz = true)`).
//!
//! # Examples
//!
//! ```
//! use fmaverify_softfloat::{fma, FpFormat, RoundingMode};
//!
//! let f = FpFormat::DOUBLE;
//! let a = (0.1f64).to_bits() as u128;
//! let b = (10.0f64).to_bits() as u128;
//! let c = (-1.0f64).to_bits() as u128;
//! // 0.1 * 10 - 1 is not zero in binary floating point; the fused result
//! // exposes the representation error of 0.1.
//! let r = fma(f, a, b, c, RoundingMode::NearestEven);
//! assert_eq!(f64::from_bits(r.bits as u64), 0.1f64.mul_add(10.0, -1.0));
//! ```

#![warn(missing_docs)]

mod format;
mod ops;
mod wide;

pub use format::{Flags, FpClass, FpFormat, RoundingMode};
pub use ops::{add_with, fma, fma_with, mul_with, negate, sub_with, FpResult};
pub use wide::U256;
