//! A minimal 256-bit unsigned integer, just wide enough to hold the exact
//! intermediate result of a double-precision fused multiply-add (161 bits
//! plus guard headroom).

use std::cmp::Ordering;

/// A 256-bit unsigned integer stored as four little-endian 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct U256 {
    limbs: [u64; 4],
}

impl U256 {
    /// Zero.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };

    /// Builds from a `u128`.
    pub fn from_u128(v: u128) -> U256 {
        U256 {
            limbs: [v as u64, (v >> 64) as u64, 0, 0],
        }
    }

    /// Truncates to `u128` (low 128 bits).
    pub fn low_u128(self) -> u128 {
        u128::from(self.limbs[0]) | u128::from(self.limbs[1]) << 64
    }

    /// Returns `true` iff the value fits in 128 bits.
    pub fn fits_u128(self) -> bool {
        self.limbs[2] == 0 && self.limbs[3] == 0
    }

    /// Is the value zero?
    pub fn is_zero(self) -> bool {
        self.limbs == [0; 4]
    }

    /// Bit length: position of the highest set bit plus one (0 for zero).
    pub fn bit_len(self) -> u32 {
        for i in (0..4).rev() {
            if self.limbs[i] != 0 {
                return 64 * i as u32 + 64 - self.limbs[i].leading_zeros();
            }
        }
        0
    }

    /// Tests bit `i`.
    pub fn bit(self, i: u32) -> bool {
        if i >= 256 {
            return false;
        }
        self.limbs[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Returns `true` iff any bit strictly below position `i` is set.
    pub fn any_below(self, i: u32) -> bool {
        if i == 0 {
            return false;
        }
        if i >= 256 {
            return !self.is_zero();
        }
        let full = (i / 64) as usize;
        for limb in &self.limbs[..full] {
            if *limb != 0 {
                return true;
            }
        }
        let rem = i % 64;
        rem != 0 && self.limbs[full] << (64 - rem) != 0
    }

    /// Wrapping addition.
    ///
    /// # Panics
    /// Panics in debug builds on overflow past 256 bits (the FMA datapath
    /// never exceeds ~220 bits).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: U256) -> U256 {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for (limb, (&a, &b)) in out.iter_mut().zip(self.limbs.iter().zip(&rhs.limbs)) {
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        debug_assert_eq!(carry, 0, "U256 addition overflow");
        U256 { limbs: out }
    }

    /// Subtraction.
    ///
    /// # Panics
    /// Panics in debug builds if `rhs > self`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: U256) -> U256 {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for (limb, (&a, &b)) in out.iter_mut().zip(self.limbs.iter().zip(&rhs.limbs)) {
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0, "U256 subtraction underflow");
        U256 { limbs: out }
    }

    /// Subtracts one.
    pub fn dec(self) -> U256 {
        self.sub(U256::from_u128(1))
    }

    /// Adds one.
    pub fn inc(self) -> U256 {
        self.add(U256::from_u128(1))
    }

    /// Left shift.
    #[allow(clippy::should_implement_trait)]
    pub fn shl(self, sh: u32) -> U256 {
        if sh == 0 {
            return self;
        }
        if sh >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (sh / 64) as usize;
        let bit_shift = sh % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            let src = i - limb_shift;
            let mut v = self.limbs[src] << bit_shift;
            if bit_shift != 0 && src > 0 {
                v |= self.limbs[src - 1] >> (64 - bit_shift);
            }
            out[i] = v;
        }
        U256 { limbs: out }
    }

    /// Logical right shift.
    #[allow(clippy::should_implement_trait)]
    pub fn shr(self, sh: u32) -> U256 {
        if sh == 0 {
            return self;
        }
        if sh >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (sh / 64) as usize;
        let bit_shift = sh % 64;
        let mut out = [0u64; 4];
        for (i, limb) in out.iter_mut().enumerate().take(4 - limb_shift) {
            let src = i + limb_shift;
            let mut v = self.limbs[src] >> bit_shift;
            if bit_shift != 0 && src + 1 < 4 {
                v |= self.limbs[src + 1] << (64 - bit_shift);
            }
            *limb = v;
        }
        U256 { limbs: out }
    }

    /// Comparison.
    pub fn cmp_value(self, rhs: U256) -> Ordering {
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&rhs.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_bits() {
        let v = U256::from_u128(0x1234_5678_9abc_def0_1122_3344_5566_7788);
        assert_eq!(v.low_u128(), 0x1234_5678_9abc_def0_1122_3344_5566_7788);
        assert!(v.fits_u128());
        assert_eq!(v.bit_len(), 125);
        assert!(v.bit(3));
        assert!(!v.bit(0));
        assert!(U256::ZERO.is_zero());
        assert_eq!(U256::ZERO.bit_len(), 0);
    }

    #[test]
    fn add_sub_carry_chains() {
        let a = U256::from_u128(u128::MAX);
        let one = U256::from_u128(1);
        let b = a.add(one);
        assert!(!b.fits_u128());
        assert_eq!(b.bit_len(), 129);
        assert_eq!(b.sub(one), a);
        assert_eq!(b.dec(), a);
        assert_eq!(a.inc(), b);
    }

    #[test]
    fn shifts() {
        let v = U256::from_u128(0xdead_beef);
        assert_eq!(v.shl(64).shr(64), v);
        assert_eq!(v.shl(130).shr(130), v);
        assert_eq!(v.shl(256), U256::ZERO);
        assert_eq!(v.shr(256), U256::ZERO);
        assert_eq!(v.shl(0), v);
        let hi = v.shl(200);
        assert_eq!(hi.bit_len(), 232);
        assert_eq!(hi.shr(200), v);
    }

    #[test]
    fn any_below() {
        let v = U256::from_u128(0b1010_0000);
        assert!(!v.any_below(5));
        assert!(!v.any_below(0));
        assert!(v.any_below(6));
        assert!(v.any_below(8));
        assert!(v.any_below(300));
        let w = U256::from_u128(1).shl(128);
        assert!(!w.any_below(128));
        assert!(w.any_below(129));
    }

    #[test]
    fn compare() {
        let a = U256::from_u128(5).shl(100);
        let b = U256::from_u128(6).shl(100);
        assert_eq!(a.cmp_value(b), Ordering::Less);
        assert_eq!(b.cmp_value(a), Ordering::Greater);
        assert_eq!(a.cmp_value(a), Ordering::Equal);
        let c = U256::from_u128(1).shl(200);
        assert_eq!(c.cmp_value(b), Ordering::Greater);
    }

    #[test]
    fn random_vs_u128() {
        // Cross-check against native u128 arithmetic where values fit.
        let mut x: u128 = 0x1234_5678;
        for i in 0..2000u32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = x >> 4; // keep below 124 bits
            let b = (x.rotate_left(40)) >> 4;
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let ua = U256::from_u128(a);
            let ub = U256::from_u128(b);
            assert_eq!(
                U256::from_u128(hi).sub(U256::from_u128(lo)).low_u128(),
                hi - lo
            );
            let sum = ua.add(ub);
            assert_eq!(sum.low_u128(), a.wrapping_add(b), "sum iter {i}");
            let sh = i % 120;
            assert_eq!(ua.shr(sh).low_u128(), a >> sh);
            if a.leading_zeros() >= sh {
                assert_eq!(ua.shl(sh).low_u128(), a << sh);
            }
            assert_eq!(ua.cmp_value(ub), a.cmp(&b));
            assert_eq!(ua.bit_len(), 128 - a.leading_zeros());
        }
    }
}
