//! Bit-accurate fused multiply-add, addition and multiplication.
//!
//! This is the executable counterpart of the processor's architectural
//! specification: the oracle both FPU netlists are validated against. The
//! computation is exact up to the single final rounding, using a 256-bit
//! intermediate (the paper's 161-bit intermediate result plus guard
//! headroom) and a sticky-bit compression of far-out operands exactly
//! mirroring the paper's far-out cases.
//!
//! Tininess is detected *before* rounding (the PowerPC convention), and the
//! underflow flag is raised when the result is tiny and inexact.

use crate::format::{Flags, FpClass, FpFormat, RoundingMode};
use crate::wide::U256;

/// Result of an arithmetic operation: the output datum plus IEEE flags.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FpResult {
    /// The result bit pattern in the operation's format.
    pub bits: u128,
    /// The exception flags raised.
    pub flags: Flags,
}

/// Sign convention for an exactly-zero result produced from a zero product
/// and a zero addend.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ZeroSign {
    /// IEEE sum-of-zeros rule: equal signs keep the sign; opposite signs give
    /// +0 except −0 under round-toward-negative. Used by FMA and ADD.
    FromRounding,
    /// The multiply instruction's rule: the product sign, always. The FPU
    /// computes `A*B+0`, and the forced-zero addend must not disturb the sign
    /// of an exact zero product.
    Product,
}

/// Fused multiply-add `a*b + c` with denormal operands honored (full IEEE).
pub fn fma(fmt: FpFormat, a: u128, b: u128, c: u128, rm: RoundingMode) -> FpResult {
    fma_core(fmt, a, b, c, rm, false, ZeroSign::FromRounding)
}

/// Fused multiply-add with optional denormal-operands-are-zero behaviour
/// (`daz = true` models the paper's primary FPU, which "maps denormal
/// operands to zero" while still producing denormal results).
pub fn fma_with(fmt: FpFormat, a: u128, b: u128, c: u128, rm: RoundingMode, daz: bool) -> FpResult {
    fma_core(fmt, a, b, c, rm, daz, ZeroSign::FromRounding)
}

/// Addition `a + b`, computed as the FPU computes it: `a*1 + b`.
pub fn add_with(fmt: FpFormat, a: u128, b: u128, rm: RoundingMode, daz: bool) -> FpResult {
    fma_core(fmt, a, fmt.one(false), b, rm, daz, ZeroSign::FromRounding)
}

/// Subtraction `a - b` (addition with the second operand negated).
pub fn sub_with(fmt: FpFormat, a: u128, b: u128, rm: RoundingMode, daz: bool) -> FpResult {
    add_with(fmt, a, negate(fmt, b), rm, daz)
}

/// Multiplication `a * b`, computed as the FPU computes it: `a*b + 0` with
/// the exact-zero sign taken from the product.
pub fn mul_with(fmt: FpFormat, a: u128, b: u128, rm: RoundingMode, daz: bool) -> FpResult {
    fma_core(fmt, a, b, fmt.zero(false), rm, daz, ZeroSign::Product)
}

/// Flips the sign bit.
pub fn negate(fmt: FpFormat, a: u128) -> u128 {
    a ^ 1u128 << (fmt.width() - 1)
}

fn apply_daz(fmt: FpFormat, x: u128, daz: bool) -> u128 {
    if daz && fmt.classify(x) == FpClass::Denormal {
        fmt.zero(fmt.sign_of(x))
    } else {
        x
    }
}

fn fma_core(
    fmt: FpFormat,
    a: u128,
    b: u128,
    c: u128,
    rm: RoundingMode,
    daz: bool,
    zero_sign: ZeroSign,
) -> FpResult {
    let mut flags = Flags::default();
    let a = apply_daz(fmt, a, daz);
    let b = apply_daz(fmt, b, daz);
    let c = apply_daz(fmt, c, daz);
    let (ca, cb, cc) = (fmt.classify(a), fmt.classify(b), fmt.classify(c));

    // NaN propagation: any NaN in, canonical quiet NaN out; signaling NaNs
    // raise invalid.
    if ca == FpClass::Nan || cb == FpClass::Nan || cc == FpClass::Nan {
        flags.invalid =
            fmt.is_signaling_nan(a) || fmt.is_signaling_nan(b) || fmt.is_signaling_nan(c);
        return FpResult {
            bits: fmt.quiet_nan(),
            flags,
        };
    }

    let sp = fmt.sign_of(a) ^ fmt.sign_of(b);

    // Infinite product.
    if ca == FpClass::Inf || cb == FpClass::Inf {
        if ca == FpClass::Zero || cb == FpClass::Zero {
            flags.invalid = true; // inf * 0
            return FpResult {
                bits: fmt.quiet_nan(),
                flags,
            };
        }
        if cc == FpClass::Inf && fmt.sign_of(c) != sp {
            flags.invalid = true; // inf - inf
            return FpResult {
                bits: fmt.quiet_nan(),
                flags,
            };
        }
        return FpResult {
            bits: fmt.inf(sp),
            flags,
        };
    }
    // Finite product, infinite addend.
    if cc == FpClass::Inf {
        return FpResult { bits: c, flags };
    }

    // Exactly-zero product.
    if ca == FpClass::Zero || cb == FpClass::Zero {
        if cc == FpClass::Zero {
            let sc = fmt.sign_of(c);
            let sign = if sp == sc {
                sp
            } else {
                match zero_sign {
                    ZeroSign::Product => sp,
                    ZeroSign::FromRounding => rm == RoundingMode::TowardNegative,
                }
            };
            return FpResult {
                bits: fmt.zero(sign),
                flags,
            };
        }
        // 0 + c is exactly c.
        return FpResult { bits: c, flags };
    }

    let (_, ma, ea) = fmt.unpack_finite(a);
    let (_, mb, eb) = fmt.unpack_finite(b);
    let mp = ma * mb; // exact: at most 2*(frac+1) <= 114 bits
    let ep = ea + eb;

    if cc == FpClass::Zero {
        // Product plus a forced or operand zero: round the exact product.
        return round_pack(fmt, sp, U256::from_u128(mp), ep, false, rm, &mut flags);
    }

    let sc = fmt.sign_of(c);
    let (_, mc, ec) = fmt.unpack_finite(c);
    let f = fmt.frac_bits() as i32;
    let d = ep - ec;

    if d > f + 4 {
        // Far-out right (paper Figure 2d): the addend is far below the
        // product and collapses to a sticky bit.
        sticky_combine(fmt, sp, mp, ep, sc, rm, &mut flags)
    } else if d < -(2 * f + 5) {
        // Far-out left (paper Figure 2a): the product collapses to a sticky
        // bit below the addend.
        sticky_combine(fmt, sc, mc, ec, sp, rm, &mut flags)
    } else {
        // Overlap (paper Figures 2b/2c): exact alignment on a common grid.
        let base = ep.min(ec);
        let wp = U256::from_u128(mp).shl((ep - base) as u32);
        let wc = U256::from_u128(mc).shl((ec - base) as u32);
        if sp == sc {
            round_pack(fmt, sp, wp.add(wc), base, false, rm, &mut flags)
        } else {
            match wp.cmp_value(wc) {
                std::cmp::Ordering::Equal => {
                    // Exact cancellation: +0, or −0 toward negative.
                    FpResult {
                        bits: fmt.zero(rm == RoundingMode::TowardNegative),
                        flags,
                    }
                }
                std::cmp::Ordering::Greater => {
                    round_pack(fmt, sp, wp.sub(wc), base, false, rm, &mut flags)
                }
                std::cmp::Ordering::Less => {
                    round_pack(fmt, sc, wc.sub(wp), base, false, rm, &mut flags)
                }
            }
        }
    }
}

/// Combines a dominant operand `(s_large, m_large * 2^e_large)` with a
/// far-out operand of sign `s_small` that is strictly smaller than a quarter
/// of the dominant operand's LSB weight: the small operand only contributes
/// a sticky bit (and a borrow for effective subtraction).
fn sticky_combine(
    fmt: FpFormat,
    s_large: bool,
    m_large: u128,
    e_large: i32,
    s_small: bool,
    rm: RoundingMode,
    flags: &mut Flags,
) -> FpResult {
    let wide = U256::from_u128(m_large).shl(2);
    let e_lsb = e_large - 2;
    if s_large == s_small {
        round_pack(fmt, s_large, wide, e_lsb, true, rm, flags)
    } else {
        round_pack(fmt, s_large, wide.dec(), e_lsb, true, rm, flags)
    }
}

/// Rounds the exact value `(-1)^sign * mag * 2^e_lsb` (with `sticky_in`
/// marking nonzero value strictly below `2^e_lsb`) into the format,
/// updating flags.
fn round_pack(
    fmt: FpFormat,
    sign: bool,
    mag: U256,
    e_lsb: i32,
    sticky_in: bool,
    rm: RoundingMode,
    flags: &mut Flags,
) -> FpResult {
    debug_assert!(!mag.is_zero(), "exact zero handled by the caller");
    let frac = fmt.frac_bits() as i32;
    let bl = mag.bit_len() as i32;
    let e_top = e_lsb + bl - 1;
    // Target LSB weight: normal result keeps frac+1 bits; partial
    // normalization stops at emin (denormal results).
    let w = (e_top - frac).max(fmt.emin() - frac);
    let drop = w - e_lsb;
    let (kept, guard, sticky) = if drop > 0 {
        let g = mag.bit(drop as u32 - 1);
        let s = mag.any_below(drop as u32 - 1) || sticky_in;
        (mag.shr(drop as u32), g, s)
    } else {
        (mag.shl((-drop) as u32), false, sticky_in)
    };
    let inexact = guard || sticky;
    let tiny = e_top < fmt.emin();
    let round_up = match rm {
        RoundingMode::NearestEven => guard && (sticky || kept.bit(0)),
        RoundingMode::TowardZero => false,
        RoundingMode::TowardPositive => !sign && inexact,
        RoundingMode::TowardNegative => sign && inexact,
    };
    let mut kept = if round_up { kept.inc() } else { kept };
    let mut w = w;
    if kept.bit_len() as i32 > frac + 1 {
        // Rounding overflowed the significand to exactly 2^(frac+1).
        kept = kept.shr(1);
        w += 1;
    }
    debug_assert!(kept.fits_u128());
    let m = kept.low_u128();
    if m == 0 {
        // The whole value rounded away (necessarily tiny and inexact).
        flags.inexact = true;
        flags.underflow = true;
        return FpResult {
            bits: fmt.zero(sign),
            flags: *flags,
        };
    }
    let e = w + frac; // exponent of the implicit-bit position
    if m >> frac == 0 {
        // Denormal result.
        debug_assert_eq!(w, fmt.emin() - frac);
        flags.inexact |= inexact;
        flags.underflow |= tiny && inexact;
        return FpResult {
            bits: fmt.pack(sign, 0, m),
            flags: *flags,
        };
    }
    if e > fmt.emax() {
        flags.overflow = true;
        flags.inexact = true;
        let bits = match rm {
            RoundingMode::NearestEven => fmt.inf(sign),
            RoundingMode::TowardZero => fmt.max_finite(sign),
            RoundingMode::TowardPositive => {
                if sign {
                    fmt.max_finite(true)
                } else {
                    fmt.inf(false)
                }
            }
            RoundingMode::TowardNegative => {
                if sign {
                    fmt.inf(true)
                } else {
                    fmt.max_finite(false)
                }
            }
        };
        return FpResult {
            bits,
            flags: *flags,
        };
    }
    flags.inexact |= inexact;
    flags.underflow |= tiny && inexact;
    FpResult {
        bits: fmt.pack(sign, (e + fmt.bias()) as u32, m & fmt.frac_mask()),
        flags: *flags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: FpFormat = FpFormat::DOUBLE;

    fn d(v: f64) -> u128 {
        v.to_bits() as u128
    }

    fn same_double(bits: u128, v: f64) -> bool {
        if v.is_nan() {
            D.is_nan(bits)
        } else {
            bits == v.to_bits() as u128
        }
    }

    #[test]
    fn double_fma_matches_host_rne() {
        let cases = [
            (1.5, 2.0, 0.25),
            (0.1, 0.2, 0.3),
            (-1.0, 1.0, 1.0),
            (1e308, 10.0, -1e308),
            (1e-300, 1e-300, 1e-300),
            (3.0, -7.0, 21.0),
            (1.0000000000000002, 1.0000000000000002, -1.0),
            (5e-324, 0.5, 0.0),
            (5e-324, 5e-324, 1e-320),
            (f64::MAX, 2.0, f64::NEG_INFINITY),
            (2.5, 2.5, -6.25),
        ];
        for (a, b, c) in cases {
            let r = fma(D, d(a), d(b), d(c), RoundingMode::NearestEven);
            let host = a.mul_add(b, c);
            assert!(
                same_double(r.bits, host),
                "fma({a},{b},{c}) = {:#x}, host {:#x}",
                r.bits,
                host.to_bits()
            );
        }
    }

    #[test]
    fn double_add_mul_match_host_rne() {
        let values = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.5,
            std::f64::consts::PI,
            -2.75,
            1e300,
            -1e300,
            1e-308,
            5e-324,
            -5e-324,
            f64::MAX,
            f64::MIN_POSITIVE,
            1.0000000000000002,
        ];
        for &a in &values {
            for &b in &values {
                let add = add_with(D, d(a), d(b), RoundingMode::NearestEven, false);
                assert!(same_double(add.bits, a + b), "{a} + {b}");
                let mul = mul_with(D, d(a), d(b), RoundingMode::NearestEven, false);
                assert!(same_double(mul.bits, a * b), "{a} * {b}");
                let sub = sub_with(D, d(a), d(b), RoundingMode::NearestEven, false);
                assert!(same_double(sub.bits, a - b), "{a} - {b}");
            }
        }
    }

    #[test]
    fn special_values() {
        let inf = D.inf(false);
        let ninf = D.inf(true);
        let qnan = D.quiet_nan();
        let zero = D.zero(false);
        let one = D.one(false);
        let rm = RoundingMode::NearestEven;
        // inf * 0 -> invalid NaN.
        let r = fma(D, inf, zero, one, rm);
        assert!(D.is_nan(r.bits) && r.flags.invalid);
        // inf * 1 + (-inf) -> invalid NaN.
        let r = fma(D, inf, one, ninf, rm);
        assert!(D.is_nan(r.bits) && r.flags.invalid);
        // inf * 1 + inf -> inf.
        let r = fma(D, inf, one, inf, rm);
        assert_eq!(r.bits, inf);
        assert_eq!(r.flags, Flags::default());
        // NaN propagation without invalid (quiet).
        let r = fma(D, qnan, one, one, rm);
        assert!(D.is_nan(r.bits) && !r.flags.invalid);
        // Signaling NaN raises invalid.
        let snan = D.pack(false, D.exp_max_biased(), 1);
        let r = fma(D, snan, one, one, rm);
        assert!(D.is_nan(r.bits) && r.flags.invalid);
        // Finite + inf -> inf.
        let r = fma(D, one, one, ninf, rm);
        assert_eq!(r.bits, ninf);
    }

    #[test]
    fn zero_sign_rules() {
        let pz = D.zero(false);
        let nz = D.zero(true);
        let one = D.one(false);
        // (+0 * 1) + (-0): signs differ -> +0 except RTN.
        for rm in RoundingMode::ALL {
            let r = fma(D, pz, one, nz, rm);
            let expect = if rm == RoundingMode::TowardNegative {
                nz
            } else {
                pz
            };
            assert_eq!(r.bits, expect, "rm {rm:?}");
        }
        // (-0 * 1) + (-0) keeps -0 in every mode.
        for rm in RoundingMode::ALL {
            let r = fma(D, nz, one, nz, rm);
            assert_eq!(r.bits, nz);
        }
        // mul: -1 * 0 gives -0 in every mode (the Product zero-sign rule).
        for rm in RoundingMode::ALL {
            let r = mul_with(D, d(-1.0), pz, rm, false);
            assert_eq!(r.bits, nz, "rm {rm:?}");
        }
        // Exact cancellation 1 - 1: +0 except RTN.
        for rm in RoundingMode::ALL {
            let r = sub_with(D, one, one, rm, false);
            let expect = if rm == RoundingMode::TowardNegative {
                nz
            } else {
                pz
            };
            assert_eq!(r.bits, expect);
        }
    }

    #[test]
    fn directed_rounding_double() {
        // 1 + 2^-60 is inexact; check all four modes.
        let one = D.one(false);
        let tiny = d(2f64.powi(-60));
        let next = d(1.0 + f64::EPSILON);
        for (rm, expect) in [
            (RoundingMode::NearestEven, one),
            (RoundingMode::TowardZero, one),
            (RoundingMode::TowardPositive, next),
            (RoundingMode::TowardNegative, one),
        ] {
            let r = add_with(D, one, tiny, rm, false);
            assert_eq!(r.bits, expect, "rm {rm:?}");
            assert!(r.flags.inexact);
        }
        // -1 - 2^-60: toward negative moves away from zero.
        let none = D.one(true);
        let nnext = d(-(1.0 + f64::EPSILON));
        let r = add_with(
            D,
            none,
            negate(D, tiny),
            RoundingMode::TowardNegative,
            false,
        );
        assert_eq!(r.bits, nnext);
        let r = add_with(
            D,
            none,
            negate(D, tiny),
            RoundingMode::TowardPositive,
            false,
        );
        assert_eq!(r.bits, none);
    }

    #[test]
    fn overflow_behaviour() {
        let max = D.max_finite(false);
        let rm_cases = [
            (RoundingMode::NearestEven, D.inf(false)),
            (RoundingMode::TowardZero, max),
            (RoundingMode::TowardPositive, D.inf(false)),
            (RoundingMode::TowardNegative, max),
        ];
        for (rm, expect) in rm_cases {
            let r = mul_with(D, max, d(2.0), rm, false);
            assert_eq!(r.bits, expect, "rm {rm:?}");
            assert!(r.flags.overflow && r.flags.inexact);
        }
        // Negative overflow mirrors.
        let r = mul_with(
            D,
            D.max_finite(true),
            d(2.0),
            RoundingMode::TowardPositive,
            false,
        );
        assert_eq!(r.bits, D.max_finite(true));
        let r = mul_with(
            D,
            D.max_finite(true),
            d(2.0),
            RoundingMode::TowardNegative,
            false,
        );
        assert_eq!(r.bits, D.inf(true));
    }

    #[test]
    fn underflow_and_denormals() {
        // min_normal / 2 is denormal: tiny and exact -> no underflow flag.
        let half = d(0.5);
        let r = mul_with(
            D,
            D.min_normal(false),
            half,
            RoundingMode::NearestEven,
            false,
        );
        assert_eq!(r.bits, d(f64::MIN_POSITIVE / 2.0));
        assert!(!r.flags.underflow && !r.flags.inexact);
        // min_denormal * 0.6 is tiny and inexact -> underflow.
        let r = mul_with(
            D,
            D.min_denormal(false),
            d(0.6),
            RoundingMode::NearestEven,
            false,
        );
        assert!(r.flags.underflow && r.flags.inexact);
        assert_eq!(r.bits, D.min_denormal(false)); // rounds to nearest denormal
                                                   // Rounds away to zero toward zero.
        let r = mul_with(
            D,
            D.min_denormal(false),
            d(0.4),
            RoundingMode::TowardZero,
            false,
        );
        assert_eq!(r.bits, D.zero(false));
        assert!(r.flags.underflow && r.flags.inexact);
    }

    #[test]
    fn denormal_product_of_normals() {
        // The paper's "interesting hidden case": a product of two normals can
        // be denormal (e.g. 2^-537 * 2^-537 = 2^-1074 at double precision).
        let a = d(2f64.powi(-537));
        let r = mul_with(D, a, a, RoundingMode::NearestEven, false);
        assert_eq!(r.bits, D.min_denormal(false));
        assert_eq!(D.classify(r.bits), FpClass::Denormal);
        assert!(!r.flags.inexact);
        // Adding zero must denormalize identically.
        let r2 = fma(D, a, a, D.zero(false), RoundingMode::NearestEven);
        assert_eq!(r2.bits, r.bits);
    }

    #[test]
    fn daz_mode() {
        let den = D.min_denormal(false);
        let one = D.one(false);
        // Full IEEE: denormal + 1 rounds to 1 (inexact).
        let r = add_with(D, den, one, RoundingMode::NearestEven, false);
        assert_eq!(r.bits, one);
        assert!(r.flags.inexact);
        // DAZ: the denormal operand is treated as +0; result exact 1.
        let r = add_with(D, den, one, RoundingMode::NearestEven, true);
        assert_eq!(r.bits, one);
        assert!(!r.flags.inexact);
        // DAZ with denormal times huge: exact zero product.
        let r = mul_with(D, den, d(1e300), RoundingMode::NearestEven, true);
        assert_eq!(r.bits, D.zero(false));
        // Full IEEE: nonzero.
        let r = mul_with(D, den, d(1e300), RoundingMode::NearestEven, false);
        assert_ne!(r.bits, D.zero(false));
    }

    #[test]
    fn far_out_sticky_cases() {
        // Far-out right: product dominates, addend is a sticky bit.
        // 1.5 * 2^200 - 5e-324: just below 1.5*2^200; RNE keeps it, RTZ/RTN
        // step down one ulp.
        let big = d(1.5 * 2f64.powi(200));
        let tiny = D.min_denormal(false);
        let one = D.one(false);
        let r = fma(D, big, one, negate(D, tiny), RoundingMode::NearestEven);
        assert_eq!(r.bits, big);
        assert!(r.flags.inexact);
        let r = fma(D, big, one, negate(D, tiny), RoundingMode::TowardZero);
        let below = d(f64::from_bits((1.5 * 2f64.powi(200)).to_bits() - 1));
        assert_eq!(r.bits, below);
        let r = fma(D, big, one, negate(D, tiny), RoundingMode::TowardNegative);
        assert_eq!(r.bits, below);
        let r = fma(D, big, one, negate(D, tiny), RoundingMode::TowardPositive);
        assert_eq!(r.bits, big);
        // Far-out left: addend dominates.
        let r = fma(D, tiny, tiny, big, RoundingMode::NearestEven);
        assert_eq!(r.bits, big);
        assert!(r.flags.inexact);
        let r = fma(D, tiny, tiny, big, RoundingMode::TowardPositive);
        let above = d(f64::from_bits((1.5 * 2f64.powi(200)).to_bits() + 1));
        assert_eq!(r.bits, above);
    }

    #[test]
    fn massive_cancellation() {
        // (1 + eps) * (1 - eps) - 1 = -eps^2 exactly (fits the wide
        // intermediate); only FMA can see it.
        let eps = f64::EPSILON;
        let a = d(1.0 + eps);
        let b = d(1.0 - eps);
        let r = fma(D, a, b, d(-1.0), RoundingMode::NearestEven);
        let expect = (1.0 + eps).mul_add(1.0 - eps, -1.0);
        assert_eq!(r.bits, d(expect));
        assert_eq!(expect, -(eps * eps));
        assert!(!r.flags.inexact, "the fused result is exact");
    }

    #[test]
    fn commutativity_of_product() {
        let vals = [d(1.5), d(-2.25), d(1e-310), d(3.7), D.max_finite(false)];
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    for rm in RoundingMode::ALL {
                        assert_eq!(fma(D, a, b, c, rm), fma(D, b, a, c, rm));
                    }
                }
            }
        }
    }
}
