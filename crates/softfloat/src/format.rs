//! Parametric IEEE-754 binary formats.
//!
//! The paper works at double precision (11-bit exponent, 52-bit fraction).
//! To keep full formal sweeps tractable on one machine, everything in this
//! reproduction is parametric in the format; [`FpFormat::DOUBLE`] recovers
//! the paper's setting exactly.

/// An IEEE-754 binary interchange format: 1 sign bit, `exp_bits` exponent
/// bits and `frac_bits` fraction bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FpFormat {
    exp_bits: u32,
    frac_bits: u32,
}

/// Classification of a floating-point datum.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FpClass {
    /// Not a number (quiet or signaling).
    Nan,
    /// Positive or negative infinity.
    Inf,
    /// Positive or negative zero.
    Zero,
    /// A denormal (subnormal) number.
    Denormal,
    /// A normal number.
    Normal,
}

impl FpFormat {
    /// IEEE-754 binary64, the paper's double-precision format.
    pub const DOUBLE: FpFormat = FpFormat::new(11, 52);
    /// IEEE-754 binary32.
    pub const SINGLE: FpFormat = FpFormat::new(8, 23);
    /// IEEE-754 binary16.
    pub const HALF: FpFormat = FpFormat::new(5, 10);
    /// A tiny format (4-bit exponent, 3-bit fraction) small enough for
    /// exhaustive operand enumeration in tests.
    pub const MICRO: FpFormat = FpFormat::new(4, 3);

    /// Creates a format.
    ///
    /// # Panics
    /// Panics if `exp_bits < 2`, `frac_bits < 1`, the total width exceeds 128
    /// bits, or `frac_bits > 56` (the exact-intermediate datapath is sized
    /// for up to slightly beyond double precision).
    pub const fn new(exp_bits: u32, frac_bits: u32) -> FpFormat {
        assert!(exp_bits >= 2, "need at least 2 exponent bits");
        assert!(frac_bits >= 1, "need at least 1 fraction bit");
        assert!(frac_bits <= 56, "datapath sized for frac_bits <= 56");
        assert!(1 + exp_bits + frac_bits <= 128, "format too wide");
        FpFormat {
            exp_bits,
            frac_bits,
        }
    }

    /// Number of exponent bits.
    pub const fn exp_bits(self) -> u32 {
        self.exp_bits
    }

    /// Number of fraction bits (excluding the implicit bit).
    pub const fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// Total width in bits (sign + exponent + fraction).
    pub const fn width(self) -> u32 {
        1 + self.exp_bits + self.frac_bits
    }

    /// Exponent bias.
    pub const fn bias(self) -> i32 {
        (1 << (self.exp_bits - 1)) - 1
    }

    /// Minimum unbiased exponent of a normal number (e.g. −1022 for binary64).
    pub const fn emin(self) -> i32 {
        1 - self.bias()
    }

    /// Maximum unbiased exponent of a normal number (e.g. 1023 for binary64).
    pub const fn emax(self) -> i32 {
        self.bias()
    }

    /// Mask of all valid bit positions.
    pub const fn mask(self) -> u128 {
        if self.width() >= 128 {
            u128::MAX
        } else {
            (1u128 << self.width()) - 1
        }
    }

    /// Fraction-field mask.
    pub const fn frac_mask(self) -> u128 {
        (1u128 << self.frac_bits) - 1
    }

    /// Maximum biased exponent value (all ones, used by Inf/NaN).
    pub const fn exp_max_biased(self) -> u32 {
        (1 << self.exp_bits) - 1
    }

    /// Extracts the sign bit.
    pub fn sign_of(self, bits: u128) -> bool {
        bits >> (self.width() - 1) & 1 == 1
    }

    /// Extracts the biased exponent field.
    pub fn biased_exp_of(self, bits: u128) -> u32 {
        (bits >> self.frac_bits & ((1u128 << self.exp_bits) - 1)) as u32
    }

    /// Extracts the fraction field.
    pub fn frac_of(self, bits: u128) -> u128 {
        bits & self.frac_mask()
    }

    /// Packs sign, biased exponent, and fraction fields into a datum.
    ///
    /// # Panics
    /// Panics if the fields exceed their widths.
    pub fn pack(self, sign: bool, biased_exp: u32, frac: u128) -> u128 {
        assert!(
            biased_exp <= self.exp_max_biased(),
            "exponent field overflow"
        );
        assert!(frac <= self.frac_mask(), "fraction field overflow");
        (u128::from(sign) << (self.width() - 1)) | u128::from(biased_exp) << self.frac_bits | frac
    }

    /// Classifies a datum.
    pub fn classify(self, bits: u128) -> FpClass {
        let e = self.biased_exp_of(bits);
        let f = self.frac_of(bits);
        if e == self.exp_max_biased() {
            if f == 0 {
                FpClass::Inf
            } else {
                FpClass::Nan
            }
        } else if e == 0 {
            if f == 0 {
                FpClass::Zero
            } else {
                FpClass::Denormal
            }
        } else {
            FpClass::Normal
        }
    }

    /// Is the datum any NaN?
    pub fn is_nan(self, bits: u128) -> bool {
        self.classify(bits) == FpClass::Nan
    }

    /// Is the datum a signaling NaN (NaN with the fraction MSB clear)?
    pub fn is_signaling_nan(self, bits: u128) -> bool {
        self.is_nan(bits) && bits >> (self.frac_bits - 1) & 1 == 0
    }

    /// The canonical quiet NaN (positive, fraction MSB set, rest zero).
    pub fn quiet_nan(self) -> u128 {
        self.pack(false, self.exp_max_biased(), 1u128 << (self.frac_bits - 1))
    }

    /// Infinity with the given sign.
    pub fn inf(self, sign: bool) -> u128 {
        self.pack(sign, self.exp_max_biased(), 0)
    }

    /// Zero with the given sign.
    pub fn zero(self, sign: bool) -> u128 {
        self.pack(sign, 0, 0)
    }

    /// One with the given sign.
    pub fn one(self, sign: bool) -> u128 {
        self.pack(sign, self.bias() as u32, 0)
    }

    /// The largest finite value with the given sign.
    pub fn max_finite(self, sign: bool) -> u128 {
        self.pack(sign, self.exp_max_biased() - 1, self.frac_mask())
    }

    /// The smallest positive denormal.
    pub fn min_denormal(self, sign: bool) -> u128 {
        self.pack(sign, 0, 1)
    }

    /// The smallest positive normal.
    pub fn min_normal(self, sign: bool) -> u128 {
        self.pack(sign, 1, 0)
    }

    /// Unpacks a finite nonzero datum into `(sign, integer significand m,
    /// lsb_exponent E)` such that the value is `(-1)^sign * m * 2^E`.
    ///
    /// # Panics
    /// Panics if the datum is zero, infinite, or NaN.
    pub fn unpack_finite(self, bits: u128) -> (bool, u128, i32) {
        let sign = self.sign_of(bits);
        let e = self.biased_exp_of(bits);
        let f = self.frac_of(bits);
        match self.classify(bits) {
            FpClass::Normal => (
                sign,
                f | 1u128 << self.frac_bits,
                e as i32 - self.bias() - self.frac_bits as i32,
            ),
            FpClass::Denormal => (sign, f, self.emin() - self.frac_bits as i32),
            _ => panic!("unpack_finite on non-finite or zero datum"),
        }
    }

    /// Converts to an `f64` value (exact when the format is not wider than
    /// binary64). Useful for display and tests.
    pub fn to_f64(self, bits: u128) -> f64 {
        match self.classify(bits) {
            FpClass::Nan => f64::NAN,
            FpClass::Inf => {
                if self.sign_of(bits) {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            }
            FpClass::Zero => {
                if self.sign_of(bits) {
                    -0.0
                } else {
                    0.0
                }
            }
            FpClass::Normal | FpClass::Denormal => {
                let (s, m, e) = self.unpack_finite(bits);
                let v = times_pow2(m as f64, e);
                if s {
                    -v
                } else {
                    v
                }
            }
        }
    }
}

/// Computes `x * 2^e` in steps, avoiding the intermediate overflow that makes
/// `2f64.powi(-1074)` underflow to zero.
fn times_pow2(mut x: f64, mut e: i32) -> f64 {
    while e > 500 {
        x *= 2f64.powi(500);
        e -= 500;
    }
    while e < -500 {
        x *= 2f64.powi(-500);
        e += 500;
    }
    x * 2f64.powi(e)
}

/// IEEE-754 rounding modes (the four the PowerPC architecture supports).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RoundingMode {
    /// Round to nearest, ties to even (the default mode).
    NearestEven,
    /// Round toward zero (truncate).
    TowardZero,
    /// Round toward +infinity.
    TowardPositive,
    /// Round toward −infinity.
    TowardNegative,
}

impl RoundingMode {
    /// All four modes, for exhaustive sweeps.
    pub const ALL: [RoundingMode; 4] = [
        RoundingMode::NearestEven,
        RoundingMode::TowardZero,
        RoundingMode::TowardPositive,
        RoundingMode::TowardNegative,
    ];

    /// 2-bit encoding used by the FPU netlists (PowerPC FPSCR\[RN\] order).
    pub fn encode(self) -> u32 {
        match self {
            RoundingMode::NearestEven => 0,
            RoundingMode::TowardZero => 1,
            RoundingMode::TowardPositive => 2,
            RoundingMode::TowardNegative => 3,
        }
    }

    /// Decodes the 2-bit encoding.
    ///
    /// # Panics
    /// Panics if `code > 3`.
    pub fn decode(code: u32) -> RoundingMode {
        match code {
            0 => RoundingMode::NearestEven,
            1 => RoundingMode::TowardZero,
            2 => RoundingMode::TowardPositive,
            3 => RoundingMode::TowardNegative,
            _ => panic!("invalid rounding-mode code {code}"),
        }
    }
}

/// IEEE exception flags produced by an operation.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct Flags {
    /// Invalid operation (e.g. `inf * 0`, signaling NaN input).
    pub invalid: bool,
    /// Result overflowed the largest finite value.
    pub overflow: bool,
    /// Result was tiny (before rounding) and inexact.
    pub underflow: bool,
    /// Result had to be rounded.
    pub inexact: bool,
}

impl Flags {
    /// Packs the flags into 4 bits (invalid, overflow, underflow, inexact
    /// from LSB up), matching the FPU netlists' flag outputs.
    pub fn encode(self) -> u32 {
        u32::from(self.invalid)
            | u32::from(self.overflow) << 1
            | u32::from(self.underflow) << 2
            | u32::from(self.inexact) << 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_constants() {
        let f = FpFormat::DOUBLE;
        assert_eq!(f.width(), 64);
        assert_eq!(f.bias(), 1023);
        assert_eq!(f.emin(), -1022);
        assert_eq!(f.emax(), 1023);
        assert_eq!(f.one(false), (1.0f64).to_bits() as u128);
        assert_eq!(f.inf(false), f64::INFINITY.to_bits() as u128);
        assert_eq!(f.zero(true), (-0.0f64).to_bits() as u128);
        assert_eq!(f.max_finite(false), f64::MAX.to_bits() as u128);
        assert_eq!(f.min_denormal(false), 1);
        assert_eq!(f.min_normal(false), f64::MIN_POSITIVE.to_bits() as u128);
    }

    #[test]
    fn classify_all_micro() {
        let f = FpFormat::MICRO;
        let mut counts = [0usize; 5];
        for bits in 0..1u128 << f.width() {
            let idx = match f.classify(bits) {
                FpClass::Nan => 0,
                FpClass::Inf => 1,
                FpClass::Zero => 2,
                FpClass::Denormal => 3,
                FpClass::Normal => 4,
            };
            counts[idx] += 1;
        }
        assert_eq!(counts[0], 14); // 2 signs * 7 nonzero fracs
        assert_eq!(counts[1], 2);
        assert_eq!(counts[2], 2);
        assert_eq!(counts[3], 14);
        assert_eq!(counts[4], 2 * 14 * 8);
    }

    #[test]
    fn unpack_roundtrip_against_f64() {
        let f = FpFormat::DOUBLE;
        for v in [1.0f64, -2.5, 0.1, 1e-310, f64::MIN_POSITIVE, f64::MAX] {
            let bits = v.to_bits() as u128;
            assert_eq!(f.to_f64(bits), v);
            let (s, m, e) = f.unpack_finite(bits);
            assert_eq!(s, v < 0.0);
            let recon = super::times_pow2(m as f64, e) * if s { -1.0 } else { 1.0 };
            assert_eq!(recon, v);
        }
    }

    #[test]
    fn nan_taxonomy() {
        let f = FpFormat::DOUBLE;
        let q = f.quiet_nan();
        assert!(f.is_nan(q));
        assert!(!f.is_signaling_nan(q));
        let s = f.pack(false, f.exp_max_biased(), 1);
        assert!(f.is_nan(s));
        assert!(f.is_signaling_nan(s));
        assert_eq!(q, f64::NAN.to_bits() as u128);
    }

    #[test]
    fn rounding_mode_codes() {
        for rm in RoundingMode::ALL {
            assert_eq!(RoundingMode::decode(rm.encode()), rm);
        }
    }

    #[test]
    fn flags_encoding() {
        let fl = Flags {
            invalid: true,
            overflow: false,
            underflow: true,
            inexact: true,
        };
        assert_eq!(fl.encode(), 0b1101);
        assert_eq!(Flags::default().encode(), 0);
    }
}
